// Observability plane demo: run a small sweep with the internal/obs
// registry attached, serve live metrics over HTTP while it runs, and
// scrape /metrics mid-run from inside the process — the same text a
// Prometheus server (or `curl`) would see against a real run started
// with `emucast sweep -obs-addr :9090`.
//
// The demo prints three things:
//  1. a mid-run /metrics excerpt (counters moving while cells execute),
//  2. the structured JSONL run events the sweep emitted,
//  3. a final snapshot with the run's headline figures (events/sec,
//     matrix cache hit rate, worker utilization).
//
// The registry never feeds the simulation: the sweep's result matrix is
// byte-identical with or without it (the repo's equivalence tests pin
// exactly that).
package main

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"emcast/internal/obs"
	"emcast/internal/scenario"
	"emcast/internal/sweep"
)

func main() {
	// A small but real grid: 2 strategies × 1 scenario × 2 seeds.
	sc, err := scenario.ParseString(`{
		"name": "observe-demo",
		"nodes": 60,
		"topology_scale": 8,
		"drain": "5s",
		"phases": [
			{"name": "steady", "duration": "20s",
			 "traffic": [{"kind": "poisson", "rate": 4, "senders": "uniform"}]},
			{"name": "crash", "duration": "20s",
			 "traffic": [{"kind": "poisson", "rate": 4, "senders": "uniform"}],
			 "churn": [{"kind": "crash-wave", "count": 6, "at": "2s"}]}
		]
	}`)
	if err != nil {
		log.Fatal(err)
	}
	spec := sweep.Spec{
		Name:       "observe",
		Strategies: []string{"flat", "ttl"},
		Scenarios:  []sweep.ScenarioRef{{Spec: &sc}},
		Replicates: 2,
		Workers:    2,
	}
	if err := spec.Resolve(""); err != nil {
		log.Fatal(err)
	}

	// The observability plane: one registry shared by every cell, an HTTP
	// endpoint serving it, and a JSONL event log capturing run structure.
	reg := obs.NewRegistry()
	srv, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	var events bytes.Buffer
	spec.Obs = reg
	spec.EventLog = obs.NewEventLog(&events, reg)
	fmt.Printf("serving live metrics on %s/ (also /debug/vars, /debug/pprof)\n\n", srv.URL())

	// Scrape /metrics over real HTTP while the sweep runs.
	scraped := make(chan string, 1)
	cells := make(chan struct{}, 16)
	spec.OnCell = func(c sweep.CellDone) {
		fmt.Printf("cell %d/%d %s/%s seed %d: %d events in %v (%.0f events/sec)\n",
			c.Done, c.Total, c.Scenario, c.Strategy, c.Seed,
			c.Events, c.Duration.Round(time.Millisecond),
			float64(c.Events)/c.Duration.Seconds())
		select {
		case cells <- struct{}{}:
		default:
		}
	}
	go func() {
		<-cells // at least one cell done: counters are moving
		resp, err := http.Get(srv.URL() + "/metrics")
		if err != nil {
			scraped <- "scrape failed: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		scraped <- string(body)
	}()

	start := time.Now()
	if _, err := spec.Run(); err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Println("\n--- mid-run /metrics excerpt ---")
	for _, line := range strings.Split(<-scraped, "\n") {
		if strings.HasPrefix(line, "sim_") || strings.HasPrefix(line, "sweep_") ||
			strings.HasPrefix(line, "matrix_") || strings.HasPrefix(line, "go_goroutines") {
			fmt.Println(line)
		}
	}

	fmt.Println("\n--- run events (JSONL) ---")
	for _, line := range strings.SplitAfter(events.String(), "\n") {
		// Trim each record to its head: the full records carry a complete
		// metrics snapshot, too wide for a demo transcript.
		if i := strings.Index(line, `,"metrics"`); i > 0 {
			line = line[:i] + ", ...}\n"
		}
		fmt.Print(line)
	}

	fmt.Println("\n--- final snapshot ---")
	final := obs.Scalars(reg.Snapshot())
	simEvents := final["sim_events_total"]
	hits, misses := final["matrix_row_hits_total"], final["matrix_row_misses_total"]
	fmt.Printf("emulator events:   %.0f (%.0f events/sec over %v wall)\n",
		simEvents, simEvents/wall.Seconds(), wall.Round(time.Millisecond))
	fmt.Printf("frames delivered:  %.0f (%.0f lost)\n",
		final["sim_frames_delivered_total"], final["sim_frames_lost_total"])
	fmt.Printf("deliveries:        %.0f from %.0f multicasts\n",
		final["sim_deliveries_total"], final["sim_multicasts_total"])
	fmt.Printf("matrix row cache:  %.1f%% hit rate (%.0f hits, %.0f misses)\n",
		100*hits/(hits+misses), hits, misses)
	fmt.Printf("cells:             %.0f done, mean %.2fs each\n",
		final["sweep_cells_done_total"],
		final["sweep_cell_seconds_sum"]/final["sweep_cell_seconds_count"])
}
