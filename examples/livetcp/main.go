// Live TCP: the same protocol stack over real sockets. Eight peers listen
// on loopback TCP ports, gossip with the TTL strategy (eager for the first
// two rounds, lazy IHAVE/IWANT afterwards), and every peer multicasts one
// message. This is the deployment path for real machines: give each node
// an address book and it behaves exactly like the simulated nodes.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"emcast"
)

func main() {
	const n = 8
	addrs := make(map[emcast.NodeID]string, n)
	for i := 0; i < n; i++ {
		addrs[emcast.NodeID(i)] = fmt.Sprintf("127.0.0.1:%d", 42800+i)
	}

	var mu sync.Mutex
	received := make(map[emcast.NodeID][]string)

	peers := make([]*emcast.Peer, 0, n)
	for i := 0; i < n; i++ {
		self := emcast.NodeID(i)
		book := make(map[emcast.NodeID]string, n-1)
		for id, addr := range addrs {
			if id != self {
				book[id] = addr
			}
		}
		p, err := emcast.NewPeer(emcast.PeerConfig{
			Self:       self,
			ListenAddr: addrs[self],
			Peers:      book,
			Strategy:   emcast.TTL,
			TTLRounds:  2,
			Fanout:     4,
			OnDeliver: func(d emcast.Delivery) {
				mu.Lock()
				received[d.Node] = append(received[d.Node], string(d.Payload))
				mu.Unlock()
			},
		})
		if err != nil {
			log.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		peers = append(peers, p)
	}

	// Every peer announces itself to the group.
	ids := make([]emcast.MessageID, 0, n)
	for i, p := range peers {
		ids = append(ids, p.Multicast([]byte(fmt.Sprintf("hello from peer %d", i))))
		time.Sleep(50 * time.Millisecond)
	}

	// Wait until every peer has delivered every message.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
	check:
		for _, p := range peers {
			for _, id := range ids {
				if !p.Delivered(id) {
					done = false
					break check
				}
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("=== live TCP group ===")
	for i := 0; i < n; i++ {
		msgs := received[emcast.NodeID(i)]
		sort.Strings(msgs)
		fmt.Printf("peer %d delivered %d/%d messages: %v\n", i, len(msgs), n, msgs)
	}
}
