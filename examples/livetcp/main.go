// Live TCP: the same protocol stack over real sockets. Eight peers listen
// on loopback TCP ports, gossip with the TTL strategy (eager for the first
// two rounds, lazy IHAVE/IWANT afterwards), and every peer multicasts one
// message. This is the deployment path for real machines: give each node
// an address book and it behaves exactly like the simulated nodes.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"emcast"
)

func main() {
	const n = 8

	var mu sync.Mutex
	received := make(map[emcast.NodeID][]string)

	// Every peer binds an ephemeral port (127.0.0.1:0) — no hardcoded
	// port ranges to collide with parallel runs. Views are seeded with
	// the whole group by id; the addresses are wired up once every
	// listener is bound, via the run-time AddPeer path.
	peers := make([]*emcast.Peer, 0, n)
	for i := 0; i < n; i++ {
		self := emcast.NodeID(i)
		bootstrap := make([]emcast.NodeID, 0, n-1)
		for j := 0; j < n; j++ {
			if emcast.NodeID(j) != self {
				bootstrap = append(bootstrap, emcast.NodeID(j))
			}
		}
		p, err := emcast.NewPeer(emcast.PeerConfig{
			Self:       self,
			ListenAddr: "127.0.0.1:0",
			Peers:      map[emcast.NodeID]string{},
			Bootstrap:  bootstrap,
			Strategy:   emcast.TTL,
			TTLRounds:  2,
			Fanout:     4,
			OnDeliver: func(d emcast.Delivery) {
				mu.Lock()
				received[d.Node] = append(received[d.Node], string(d.Payload))
				mu.Unlock()
			},
		})
		if err != nil {
			log.Fatalf("peer %d: %v", i, err)
		}
		defer p.Close()
		peers = append(peers, p)
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.AddPeer(emcast.NodeID(j), q.Addr())
			}
		}
	}

	// Every peer announces itself to the group.
	ids := make([]emcast.MessageID, 0, n)
	for i, p := range peers {
		ids = append(ids, p.Multicast([]byte(fmt.Sprintf("hello from peer %d", i))))
		time.Sleep(50 * time.Millisecond)
	}

	// Wait until every peer has delivered every message.
	deadline := time.Now().Add(10 * time.Second)
	for {
		done := true
	check:
		for _, p := range peers {
			for _, id := range ids {
				if !p.Delivered(id) {
					done = false
					break check
				}
			}
		}
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	fmt.Println("=== live TCP group ===")
	for i := 0; i < n; i++ {
		msgs := received[emcast.NodeID(i)]
		sort.Strings(msgs)
		fmt.Printf("peer %d delivered %d/%d messages: %v\n", i, len(msgs), n, msgs)
	}
}
