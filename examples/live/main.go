// Live playback: the same declarative scenario Spec the simulator plays,
// executed on a fleet of real TCP peers on loopback — ephemeral ports,
// wall-clock pacing, real churn (peers started and killed mid-run) — and
// diffed against the simulator's prediction metric by metric.
//
// Run without arguments for a built-in 8-node smoke scenario, or pass a
// scenario JSON file:
//
//	go run ./examples/live
//	go run ./examples/live examples/scenarios/live-smoke.json
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"emcast/internal/live"
	"emcast/internal/scenario"
)

func main() {
	spec := defaultSpec()
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		var perr error
		spec, perr = scenario.Parse(f)
		f.Close()
		if perr != nil {
			log.Fatal(perr)
		}
	}

	// The simulator's prediction first (virtual time: milliseconds).
	eng, err := scenario.New(spec)
	if err != nil {
		log.Fatal(err)
	}
	simRep, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	// The same spec on real sockets (wall clock: the spec's duration).
	h, err := live.New(spec, live.Options{
		Logf: func(format string, args ...interface{}) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	liveRep, err := h.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(liveRep.String())
	fmt.Println()
	fmt.Print(live.Compare(simRep, liveRep, nil).String())
}

// defaultSpec is a 2-phase 8-node workload with a crash wave — small
// enough to finish in ~10 s of wall clock.
func defaultSpec() scenario.Spec {
	return scenario.Spec{
		Name:          "live-demo",
		Seed:          1,
		Nodes:         8,
		Strategy:      "ttl",
		TopologyScale: 8,
		Drain:         scenario.Duration(2 * time.Second),
		Phases: []scenario.Phase{
			{
				Name:     "steady",
				Duration: scenario.Duration(3 * time.Second),
				Traffic:  []scenario.TrafficSpec{{Kind: scenario.TrafficConstant, Rate: 4}},
			},
			{
				Name:     "crash",
				Duration: scenario.Duration(3 * time.Second),
				Traffic:  []scenario.TrafficSpec{{Kind: scenario.TrafficConstant, Rate: 4}},
				Churn: []scenario.ChurnSpec{
					{Kind: scenario.ChurnCrashWave, Count: 2, At: scenario.Duration(time.Second)},
				},
			},
		},
	}
}
