package main

import "testing"

// TestCompiles is a compile smoke test: building this test binary forces
// the example to compile under `go test ./...`, so CI catches API drift
// in example code (example dirs are excluded from `go build ./...`-only
// pipelines on some setups and previously had no test files at all).
func TestCompiles(t *testing.T) {}
