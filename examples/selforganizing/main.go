// Self-organizing hubs: the fully decentralized deployment path. No node
// is told who the hubs are and no global knowledge exists anywhere —
// instead every node measures round-trip times to the random peers in its
// view, derives its own centrality score, and spreads scores epidemically
// (the gossip-based ranking the paper sketches in §4.1). The well-placed
// nodes then *discover themselves* as hubs, and the same emergent
// hubs-and-spokes structure appears as with an oracle-configured ranking.
package main

import (
	"fmt"
	"log"
	"time"

	"emcast"
)

func main() {
	const nodes = 80
	cluster, err := emcast.NewCluster(emcast.ClusterConfig{
		Nodes:         nodes,
		Strategy:      emcast.Ranked,
		GossipRanking: true, // hubs emerge from run-time measurements
		BestFraction:  0.2,
		Seed:          3,
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 60; i++ {
		if _, err := cluster.Multicast(i%nodes, []byte(fmt.Sprintf("update %d", i))); err != nil {
			log.Fatal(err)
		}
		cluster.Run(250 * time.Millisecond)
	}
	cluster.Run(10 * time.Second)

	stats := cluster.Stats()
	fmt.Println("=== self-organizing hubs (gossip-based ranking) ===")
	fmt.Printf("nodes:                 %d (nobody was configured as a hub)\n", nodes)
	fmt.Printf("delivery rate:         %.2f%%\n", 100*stats.DeliveryRate)
	fmt.Printf("mean latency:          %v\n", stats.MeanLatency.Round(time.Millisecond))
	fmt.Printf("payloads/message:      %.2f overall\n", stats.PayloadPerMsg)
	fmt.Printf("  truly-central nodes: %.2f   <- discovered themselves via gossip ranking\n", stats.PayloadPerMsgBest)
	fmt.Printf("  everyone else:       %.2f\n", stats.PayloadPerMsgLow)
	fmt.Printf("top-5%% link share:     %.1f%% (unstructured baseline is ~5-10%%)\n",
		100*stats.Top5LinkShare)
}
