// Package emcast is a Go implementation of the epidemic multicast protocol
// with emergent structure from
//
//	N. Carvalho, J. Pereira, R. Oliveira, L. Rodrigues.
//	"Emergent Structure in Unstructured Epidemic Multicast." DSN 2007.
//
// The protocol is an eager push gossip protocol with a Payload Scheduler
// layered underneath: per transmission, a pluggable strategy decides
// whether to push the full payload (eager) or only advertise it
// (lazy IHAVE/IWANT). Biasing eager pushes towards well-placed nodes and
// links makes an efficient dissemination structure *emerge* from the
// unstructured overlay — approaching tree-based multicast performance while
// keeping gossip's resilience, since every advertisement can still be
// pulled if the structure fails.
//
// Two deployment styles are offered:
//
//   - Cluster runs any number of protocol nodes in-process over a
//     deterministic network simulator with a realistic Internet-like
//     (transit-stub) latency model — ideal for experiments, tests, and
//     protocol research. See NewCluster.
//   - Peer runs one protocol node over real TCP (see Listen/Peer.Join),
//     usable across actual machines.
//
// The internal/experiment package and the emucast command reproduce every
// table and figure of the paper's evaluation; see EXPERIMENTS.md.
package emcast

import (
	"fmt"
	"time"

	"emcast/internal/ids"
	"emcast/internal/peer"
	"emcast/internal/sim"
	"emcast/internal/topology"
)

// MessageID identifies a multicast message (128-bit, probabilistically
// unique).
type MessageID = ids.ID

// NodeID identifies a protocol node.
type NodeID = peer.ID

// Strategy names a transmission strategy (paper §4.1, §6.4).
type Strategy string

// Available strategies.
const (
	// Eager is pure eager push gossip: minimum latency, fanout-many
	// payload copies per delivery.
	Eager Strategy = "eager"
	// Lazy is pure lazy push gossip: one payload per delivery, extra
	// round-trips of latency.
	Lazy Strategy = "lazy"
	// Flat pushes eagerly with probability P.
	Flat Strategy = "flat"
	// TTL pushes eagerly during the first TTLRounds gossip rounds.
	TTL Strategy = "ttl"
	// Radius pushes eagerly to peers within a latency radius; an
	// emergent mesh concentrates payload on short links.
	Radius Strategy = "radius"
	// Ranked pushes eagerly whenever a designated best node is
	// involved; emergent hubs carry most payload.
	Ranked Strategy = "ranked"
	// Hybrid combines Ranked, Radius and TTL (paper §6.4).
	Hybrid Strategy = "hybrid"
)

// Delivery is one application-level message delivery.
type Delivery struct {
	Node    NodeID
	ID      MessageID
	Payload []byte
	At      time.Duration
}

// ClusterConfig configures an in-process simulated deployment.
type ClusterConfig struct {
	// Nodes is the number of protocol participants. Default 100.
	Nodes int
	// Strategy selects the transmission strategy. Default Eager.
	Strategy Strategy
	// FlatP is Flat's eager probability (default 0.5).
	FlatP float64
	// TTLRounds is TTL's and Hybrid's round threshold (default 2).
	TTLRounds int
	// RadiusQuantile places the Radius/Hybrid radius at this quantile
	// of the pairwise latency distribution (default 0.10).
	RadiusQuantile float64
	// BestFraction is the fraction of nodes acting as Ranked/Hybrid
	// hubs (default 0.20).
	BestFraction float64
	// Noise degrades strategy accuracy per the paper's §4.3 (0..1).
	Noise float64
	// GossipRanking switches Ranked/Hybrid hub selection from global
	// knowledge to the fully decentralized gossip-based ranking
	// protocol (run-time RTT monitors + epidemic score spreading).
	GossipRanking bool
	// Loss is the simulated network frame loss probability.
	Loss float64
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// TopologyScale divides the simulated router population (1 =
	// paper-size, ~3000 routers). Tests use 8.
	TopologyScale int
	// MatrixBudget caps the bytes of latency-plane rows kept resident
	// (evicted Dijkstra rows recompute on demand); 0 retains every row.
	MatrixBudget int64
}

// Cluster is an in-process deployment of protocol nodes over the simulated
// network. It is driven in virtual time: Multicast schedules a message and
// Run advances the simulation. Cluster is not safe for concurrent use.
type Cluster struct {
	runner     *sim.Runner
	deliveries []Delivery
}

// NewCluster builds a simulated deployment.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	sc := sim.DefaultConfig()
	if cfg.Nodes > 0 {
		sc.Nodes = cfg.Nodes
	}
	if cfg.Seed != 0 {
		sc.Seed = cfg.Seed
	}
	if cfg.FlatP > 0 {
		sc.FlatP = cfg.FlatP
	} else {
		sc.FlatP = 0.5
	}
	switch cfg.Strategy {
	case Eager, "":
		sc.Strategy, sc.FlatP = sim.StrategyFlat, 1.0
	case Lazy:
		sc.Strategy, sc.FlatP = sim.StrategyFlat, 0.0
	case Flat:
		sc.Strategy = sim.StrategyFlat
	case TTL:
		sc.Strategy = sim.StrategyTTL
	case Radius:
		sc.Strategy = sim.StrategyRadius
	case Ranked:
		sc.Strategy = sim.StrategyRanked
	case Hybrid:
		sc.Strategy = sim.StrategyHybrid
	default:
		return nil, fmt.Errorf("emcast: unknown strategy %q", cfg.Strategy)
	}
	if cfg.TTLRounds > 0 {
		sc.TTLRounds = cfg.TTLRounds
	}
	if cfg.RadiusQuantile > 0 {
		sc.RadiusQuantile = cfg.RadiusQuantile
	}
	if cfg.BestFraction > 0 {
		sc.BestFraction = cfg.BestFraction
	}
	if cfg.Noise < 0 || cfg.Noise > 1 {
		return nil, fmt.Errorf("emcast: noise %v outside [0, 1]", cfg.Noise)
	}
	sc.Noise = cfg.Noise
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("emcast: loss %v outside [0, 1)", cfg.Loss)
	}
	sc.Loss = cfg.Loss
	sc.UseGossipRanking = cfg.GossipRanking
	if cfg.TopologyScale > 1 {
		tp := topology.DefaultParams().Scaled(cfg.TopologyScale)
		sc.Topology = &tp
	}
	if cfg.MatrixBudget < 0 {
		return nil, fmt.Errorf("emcast: matrix budget %d must be non-negative", cfg.MatrixBudget)
	}
	sc.MatrixBudget = cfg.MatrixBudget

	c := &Cluster{}
	sc.OnDeliver = func(node peer.ID, id ids.ID, payload []byte) {
		c.deliveries = append(c.deliveries, Delivery{
			Node:    node,
			ID:      id,
			Payload: append([]byte(nil), payload...),
			At:      c.runner.Network().Now(),
		})
	}
	c.runner = sim.New(sc)
	c.runner.Warmup()
	return c, nil
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.runner.Nodes()) }

// Multicast sends payload from the given node to all nodes. Call Run
// afterwards to advance virtual time and let the dissemination complete.
func (c *Cluster) Multicast(node int, payload []byte) (MessageID, error) {
	if node < 0 || node >= c.Size() {
		return MessageID{}, fmt.Errorf("emcast: node %d out of range [0, %d)", node, c.Size())
	}
	if c.runner.Failed(node) {
		return MessageID{}, fmt.Errorf("emcast: node %d has failed", node)
	}
	return c.runner.MulticastFrom(node, payload), nil
}

// Run advances the simulated network by d of virtual time.
func (c *Cluster) Run(d time.Duration) { c.runner.RunFor(d) }

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.runner.Network().Now() }

// Fail silences a node, emulating a crash: all its traffic is dropped from
// now on.
func (c *Cluster) Fail(node int) error {
	if node < 0 || node >= c.Size() {
		return fmt.Errorf("emcast: node %d out of range [0, %d)", node, c.Size())
	}
	c.runner.Fail(node)
	return nil
}

// IsHub reports whether the node is in the Ranked/Hybrid best set.
func (c *Cluster) IsHub(node int) bool {
	return c.runner.Best(peer.ID(node))
}

// Deliveries returns all application-level deliveries so far, in delivery
// order.
func (c *Cluster) Deliveries() []Delivery {
	return append([]Delivery(nil), c.deliveries...)
}

// Stats summarises the run so far.
func (c *Cluster) Stats() Stats {
	// The Low/Best split below is documented unconditionally, so
	// materialise the oracle ranking it is defined against even for
	// strategies that never query one (flat, ttl).
	c.runner.RankedNodes()
	res := c.runner.Result()
	return Stats{
		MessagesSent:      res.MessagesSent,
		Deliveries:        res.Deliveries,
		MeanLatency:       res.MeanLatency,
		P95Latency:        res.P95Latency,
		PayloadPerMsg:     res.PayloadPerMsg,
		PayloadPerMsgLow:  res.PayloadPerMsgLow,
		PayloadPerMsgBest: res.PayloadPerMsgBest,
		DeliveryRate:      res.DeliveryRate,
		AtomicRate:        res.AtomicRate,
		Top5LinkShare:     res.Top5Share,
		Duplicates:        res.Duplicates,
		ControlFrames:     res.ControlFrames,
	}
}

// Stats are the protocol metrics of a Cluster run, mirroring the paper's
// evaluation metrics.
type Stats struct {
	// MessagesSent counts multicasts; Deliveries counts per-node
	// deliveries.
	MessagesSent int
	Deliveries   int
	// MeanLatency / P95Latency summarise end-to-end delivery latency.
	MeanLatency time.Duration
	P95Latency  time.Duration
	// PayloadPerMsg is the number of payload transmissions per message
	// delivered (1 is optimal; the gossip fanout is the eager-push
	// cost). The Low/Best variants restrict to regular/hub senders.
	PayloadPerMsg     float64
	PayloadPerMsgLow  float64
	PayloadPerMsgBest float64
	// DeliveryRate is the mean fraction of live nodes reached per
	// message; AtomicRate the fraction of messages reaching all.
	DeliveryRate float64
	AtomicRate   float64
	// Top5LinkShare is the fraction of payload traffic on the 5% most
	// used connections — the emergent-structure measure.
	Top5LinkShare float64
	// Duplicates counts redundant payload receptions; ControlFrames
	// counts IHAVE/IWANT traffic.
	Duplicates    int
	ControlFrames int
}

// String renders the stats in one line.
func (s Stats) String() string {
	return fmt.Sprintf(
		"msgs=%d deliveries=%d latency=%v payload/msg=%.2f deliveryRate=%.1f%% top5=%.1f%%",
		s.MessagesSent, s.Deliveries, s.MeanLatency.Round(time.Millisecond),
		s.PayloadPerMsg, 100*s.DeliveryRate, 100*s.Top5LinkShare,
	)
}
