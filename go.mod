module emcast

go 1.24
