package emcast

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startTCPGroup starts n loopback peers on ephemeral ports (listen on
// 127.0.0.1:0, read the bound address back) and wires every address book
// once all listeners are up — no hardcoded ports, so parallel CI jobs
// cannot collide. mutate, when non-nil, adjusts each peer's config before
// start. The group is closed via t.Cleanup.
func startTCPGroup(t *testing.T, n int, mutate func(cfg *PeerConfig)) []*Peer {
	t.Helper()
	peers := make([]*Peer, 0, n)
	for i := 0; i < n; i++ {
		self := NodeID(i)
		// Seed the view with every group member by id; addresses of
		// peers not yet started follow via AddPeer below.
		bootstrap := make([]NodeID, 0, n-1)
		for j := 0; j < n; j++ {
			if NodeID(j) != self {
				bootstrap = append(bootstrap, NodeID(j))
			}
		}
		cfg := PeerConfig{
			Self:       self,
			ListenAddr: "127.0.0.1:0",
			Peers:      map[NodeID]string{},
			Bootstrap:  bootstrap,
		}
		if mutate != nil {
			mutate(&cfg)
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		t.Cleanup(func() { p.Close() })
		peers = append(peers, p)
	}
	for i, p := range peers {
		for j, q := range peers {
			if i != j {
				p.AddPeer(NodeID(j), q.Addr())
			}
		}
	}
	return peers
}

// waitDelivered polls until every peer has delivered the message or the
// deadline passes.
func waitDelivered(peers []*Peer, id MessageID, deadline time.Duration) bool {
	limit := time.Now().Add(deadline)
	for {
		all := true
		for _, p := range peers {
			if !p.Delivered(id) {
				all = false
				break
			}
		}
		if all {
			return true
		}
		if time.Now().After(limit) {
			return false
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestClusterEagerDeliversEverywhere(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 30, Strategy: Eager, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello overlay")
	id, err := c.Multicast(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)

	got := make(map[NodeID]bool)
	for _, d := range c.Deliveries() {
		if d.ID != id {
			t.Fatalf("unexpected message id %v", d.ID)
		}
		if !bytes.Equal(d.Payload, payload) {
			t.Fatalf("payload corrupted: %q", d.Payload)
		}
		got[d.Node] = true
	}
	if len(got) != c.Size() {
		t.Fatalf("delivered to %d/%d nodes", len(got), c.Size())
	}
	if s := c.Stats(); s.AtomicRate != 1 {
		t.Fatalf("atomic rate %.2f, want 1", s.AtomicRate)
	}
}

func TestClusterStrategies(t *testing.T) {
	for _, s := range []Strategy{Eager, Lazy, Flat, TTL, Radius, Ranked, Hybrid} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{Nodes: 25, Strategy: s, TopologyScale: 8})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Multicast(3, []byte("m")); err != nil {
				t.Fatal(err)
			}
			c.Run(10 * time.Second)
			if got := len(c.Deliveries()); got != c.Size() {
				t.Fatalf("strategy %s delivered to %d/%d nodes", s, got, c.Size())
			}
		})
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := NewCluster(ClusterConfig{Noise: 2}); err == nil {
		t.Error("noise > 1 accepted")
	}
	if _, err := NewCluster(ClusterConfig{Loss: 1}); err == nil {
		t.Error("loss = 1 accepted")
	}
	c, err := NewCluster(ClusterConfig{Nodes: 10, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Multicast(10, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.Fail(-1); err == nil {
		t.Error("out-of-range fail accepted")
	}
}

func TestClusterFailuresDoNotStopDissemination(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 40, Strategy: Ranked, TopologyScale: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Kill 25% of nodes, including hubs.
	killed := map[NodeID]bool{}
	for i := 0; i < 10; i++ {
		if err := c.Fail(i); err != nil {
			t.Fatal(err)
		}
		killed[NodeID(i)] = true
	}
	if _, err := c.Multicast(20, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	got := make(map[NodeID]bool)
	for _, d := range c.Deliveries() {
		got[d.Node] = true
	}
	live := c.Size() - len(killed)
	if len(got) < live*95/100 {
		t.Fatalf("delivered to %d of %d live nodes", len(got), live)
	}
	for n := range got {
		if killed[n] {
			t.Fatalf("silenced node %d delivered a message", n)
		}
	}
}

func TestClusterStatsFields(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 25, Strategy: TTL, TTLRounds: 2, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i := 0; i < 10; i++ {
		if _, err := c.Multicast(i, []byte("m")); err != nil {
			t.Fatal(err)
		}
		c.Run(400 * time.Millisecond)
	}
	c.Run(10 * time.Second)
	s := c.Stats()
	if s.MessagesSent != 10 || s.Deliveries != 250 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanLatency <= 0 || s.P95Latency < s.MeanLatency/2 {
		t.Fatalf("latency stats odd: mean=%v p95=%v", s.MeanLatency, s.P95Latency)
	}
	if s.PayloadPerMsg < 0.9 || s.PayloadPerMsg > 3 {
		t.Fatalf("TTL payload/msg = %.2f", s.PayloadPerMsg)
	}
	// The documented hub/regular split must be populated even for
	// strategies that never consult the (lazily computed) ranking.
	if s.PayloadPerMsgLow <= 0 || s.PayloadPerMsgBest <= 0 {
		t.Fatalf("low/best split empty for TTL: low=%.2f best=%.2f",
			s.PayloadPerMsgLow, s.PayloadPerMsgBest)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
	// Deliveries are recorded in virtual-time order.
	for _, d := range c.Deliveries() {
		if d.At < prev {
			t.Fatal("deliveries out of time order")
		}
		prev = d.At
	}
	if c.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestClusterGossipRanking(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:         40,
		Strategy:      Ranked,
		GossipRanking: true,
		TopologyScale: 8,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Multicast(i, []byte("tick")); err != nil {
			t.Fatal(err)
		}
		c.Run(300 * time.Millisecond)
	}
	c.Run(10 * time.Second)
	s := c.Stats()
	if s.DeliveryRate < 0.99 {
		t.Fatalf("delivery rate %.3f with gossip ranking", s.DeliveryRate)
	}
	if s.Top5LinkShare < 0.08 {
		t.Fatalf("no emergent structure with gossip ranking: %.3f", s.Top5LinkShare)
	}
}

// TestPeersOverTCP runs a real 5-node group over loopback TCP and checks a
// multicast reaches every peer.
func TestPeersOverTCP(t *testing.T) {
	const n = 5
	var mu sync.Mutex
	delivered := make(map[NodeID]int)
	peers := startTCPGroup(t, n, func(cfg *PeerConfig) {
		cfg.Strategy = TTL
		cfg.TTLRounds = 2
		cfg.Fanout = 4
		cfg.OnDeliver = func(d Delivery) {
			mu.Lock()
			delivered[d.Node]++
			mu.Unlock()
		}
	})

	id := peers[0].Multicast([]byte("over the wire"))
	if !waitDelivered(peers, id, 5*time.Second) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("timeout: deliveries=%v", delivered)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if delivered[NodeID(i)] != 1 {
			t.Errorf("peer %d delivered %d times, want 1", i, delivered[NodeID(i)])
		}
	}
}

// TestPeerLinkFilterPartition induces a network partition through the
// PeerConfig.LinkFilter hook — no OS-level tricks — and checks that frames
// stop crossing the cut in both directions, then flow again after a heal.
func TestPeerLinkFilterPartition(t *testing.T) {
	const n = 4
	var partitioned atomic.Bool
	// When partitioned, {0,1} and {2,3} are disconnected sides.
	filter := func(from, to NodeID) bool {
		if !partitioned.Load() {
			return true
		}
		return (from < 2) == (to < 2)
	}
	peers := startTCPGroup(t, n, func(cfg *PeerConfig) {
		cfg.Strategy = Eager
		cfg.Fanout = n
		cfg.LinkFilter = filter
	})

	// Sanity: fully connected before the cut.
	pre := peers[0].Multicast([]byte("before"))
	if !waitDelivered(peers, pre, 5*time.Second) {
		t.Fatal("pre-partition multicast did not reach the group")
	}

	partitioned.Store(true)
	cut := peers[0].Multicast([]byte("during"))
	if !waitDelivered(peers[:2], cut, 5*time.Second) {
		t.Fatal("multicast did not reach the sender's own side")
	}
	// The other side must stay dark: every frame that would carry the
	// payload (or its IHAVE) is dropped by the filter deterministically.
	time.Sleep(800 * time.Millisecond)
	for i := 2; i < n; i++ {
		if peers[i].Delivered(cut) {
			t.Fatalf("peer %d delivered across the partition", i)
		}
	}

	partitioned.Store(false)
	post := peers[1].Multicast([]byte("after heal"))
	if !waitDelivered(peers, post, 5*time.Second) {
		t.Fatal("post-heal multicast did not reach the group")
	}
}

// TestPeerFrameCounters checks the transport's sent/lost frame counters:
// traffic increments sent, and a full link filter turns sends into losses.
func TestPeerFrameCounters(t *testing.T) {
	var blocked atomic.Bool
	peers := startTCPGroup(t, 2, func(cfg *PeerConfig) {
		cfg.Strategy = Eager
		cfg.Fanout = 2
		cfg.LinkFilter = func(from, to NodeID) bool { return !blocked.Load() }
	})
	id := peers[0].Multicast([]byte("counted"))
	if !waitDelivered(peers, id, 5*time.Second) {
		t.Fatal("multicast did not deliver")
	}
	if sent, _ := peers[0].Frames(); sent == 0 {
		t.Fatal("no frames counted as sent")
	}
	blocked.Store(true)
	peers[0].Multicast([]byte("dropped"))
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, lost := peers[0].Frames(); lost > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no frames counted as lost under a blocking filter")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPeerRankedWithoutHubs exercises the hubless Ranked configuration on
// a real network: hubs are discovered by the gossip-based ranking protocol
// instead of being configured.
func TestPeerRankedWithoutHubs(t *testing.T) {
	const n = 4
	peers := startTCPGroup(t, n, func(cfg *PeerConfig) {
		cfg.Strategy = Ranked // no Hubs: gossip ranking kicks in
		cfg.Fanout = 3
	})

	id := peers[1].Multicast([]byte("ranked without hubs"))
	if !waitDelivered(peers, id, 10*time.Second) {
		t.Fatal("timeout waiting for hubless ranked delivery")
	}
	if len(peers[0].View()) == 0 {
		t.Fatal("peer view empty")
	}
	// BelievesHub must answer without panicking in both modes; with
	// gossip ranking actual membership depends on measurements.
	peers[0].BelievesHub(1)
}

func TestPeerBelievesHubExplicit(t *testing.T) {
	p, err := NewPeer(PeerConfig{
		Self:       9,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[NodeID]string{},
		Strategy:   Ranked,
		Hubs:       []NodeID{2, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.BelievesHub(2) || !p.BelievesHub(9) || p.BelievesHub(5) {
		t.Fatal("explicit hub set not honoured")
	}
}
