package emcast

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestClusterEagerDeliversEverywhere(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 30, Strategy: Eager, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello overlay")
	id, err := c.Multicast(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(5 * time.Second)

	got := make(map[NodeID]bool)
	for _, d := range c.Deliveries() {
		if d.ID != id {
			t.Fatalf("unexpected message id %v", d.ID)
		}
		if !bytes.Equal(d.Payload, payload) {
			t.Fatalf("payload corrupted: %q", d.Payload)
		}
		got[d.Node] = true
	}
	if len(got) != c.Size() {
		t.Fatalf("delivered to %d/%d nodes", len(got), c.Size())
	}
	if s := c.Stats(); s.AtomicRate != 1 {
		t.Fatalf("atomic rate %.2f, want 1", s.AtomicRate)
	}
}

func TestClusterStrategies(t *testing.T) {
	for _, s := range []Strategy{Eager, Lazy, Flat, TTL, Radius, Ranked, Hybrid} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			c, err := NewCluster(ClusterConfig{Nodes: 25, Strategy: s, TopologyScale: 8})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.Multicast(3, []byte("m")); err != nil {
				t.Fatal(err)
			}
			c.Run(10 * time.Second)
			if got := len(c.Deliveries()); got != c.Size() {
				t.Fatalf("strategy %s delivered to %d/%d nodes", s, got, c.Size())
			}
		})
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Strategy: "bogus"}); err == nil {
		t.Error("bogus strategy accepted")
	}
	if _, err := NewCluster(ClusterConfig{Noise: 2}); err == nil {
		t.Error("noise > 1 accepted")
	}
	if _, err := NewCluster(ClusterConfig{Loss: 1}); err == nil {
		t.Error("loss = 1 accepted")
	}
	c, err := NewCluster(ClusterConfig{Nodes: 10, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Multicast(10, nil); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := c.Fail(-1); err == nil {
		t.Error("out-of-range fail accepted")
	}
}

func TestClusterFailuresDoNotStopDissemination(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 40, Strategy: Ranked, TopologyScale: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Kill 25% of nodes, including hubs.
	killed := map[NodeID]bool{}
	for i := 0; i < 10; i++ {
		if err := c.Fail(i); err != nil {
			t.Fatal(err)
		}
		killed[NodeID(i)] = true
	}
	if _, err := c.Multicast(20, []byte("still alive")); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * time.Second)
	got := make(map[NodeID]bool)
	for _, d := range c.Deliveries() {
		got[d.Node] = true
	}
	live := c.Size() - len(killed)
	if len(got) < live*95/100 {
		t.Fatalf("delivered to %d of %d live nodes", len(got), live)
	}
	for n := range got {
		if killed[n] {
			t.Fatalf("silenced node %d delivered a message", n)
		}
	}
}

func TestClusterStatsFields(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 25, Strategy: TTL, TTLRounds: 2, TopologyScale: 8})
	if err != nil {
		t.Fatal(err)
	}
	var prev time.Duration
	for i := 0; i < 10; i++ {
		if _, err := c.Multicast(i, []byte("m")); err != nil {
			t.Fatal(err)
		}
		c.Run(400 * time.Millisecond)
	}
	c.Run(10 * time.Second)
	s := c.Stats()
	if s.MessagesSent != 10 || s.Deliveries != 250 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MeanLatency <= 0 || s.P95Latency < s.MeanLatency/2 {
		t.Fatalf("latency stats odd: mean=%v p95=%v", s.MeanLatency, s.P95Latency)
	}
	if s.PayloadPerMsg < 0.9 || s.PayloadPerMsg > 3 {
		t.Fatalf("TTL payload/msg = %.2f", s.PayloadPerMsg)
	}
	// The documented hub/regular split must be populated even for
	// strategies that never consult the (lazily computed) ranking.
	if s.PayloadPerMsgLow <= 0 || s.PayloadPerMsgBest <= 0 {
		t.Fatalf("low/best split empty for TTL: low=%.2f best=%.2f",
			s.PayloadPerMsgLow, s.PayloadPerMsgBest)
	}
	if s.String() == "" {
		t.Fatal("empty Stats string")
	}
	// Deliveries are recorded in virtual-time order.
	for _, d := range c.Deliveries() {
		if d.At < prev {
			t.Fatal("deliveries out of time order")
		}
		prev = d.At
	}
	if c.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestClusterGossipRanking(t *testing.T) {
	c, err := NewCluster(ClusterConfig{
		Nodes:         40,
		Strategy:      Ranked,
		GossipRanking: true,
		TopologyScale: 8,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Multicast(i, []byte("tick")); err != nil {
			t.Fatal(err)
		}
		c.Run(300 * time.Millisecond)
	}
	c.Run(10 * time.Second)
	s := c.Stats()
	if s.DeliveryRate < 0.99 {
		t.Fatalf("delivery rate %.3f with gossip ranking", s.DeliveryRate)
	}
	if s.Top5LinkShare < 0.08 {
		t.Fatalf("no emergent structure with gossip ranking: %.3f", s.Top5LinkShare)
	}
}

// TestPeersOverTCP runs a real 5-node group over loopback TCP and checks a
// multicast reaches every peer.
func TestPeersOverTCP(t *testing.T) {
	const n = 5
	addrs := make(map[NodeID]string, n)
	for i := 0; i < n; i++ {
		addrs[NodeID(i)] = fmt.Sprintf("127.0.0.1:%d", 39700+i)
	}

	var mu sync.Mutex
	delivered := make(map[NodeID]int)

	peers := make([]*Peer, 0, n)
	for i := 0; i < n; i++ {
		self := NodeID(i)
		others := make(map[NodeID]string)
		for id, a := range addrs {
			if id != self {
				others[id] = a
			}
		}
		p, err := NewPeer(PeerConfig{
			Self:       self,
			ListenAddr: addrs[self],
			Peers:      others,
			Strategy:   TTL,
			TTLRounds:  2,
			Fanout:     4,
			OnDeliver: func(d Delivery) {
				mu.Lock()
				delivered[d.Node]++
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		peers = append(peers, p)
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	id := peers[0].Multicast([]byte("over the wire"))
	deadline := time.Now().Add(5 * time.Second)
	for {
		all := true
		for _, p := range peers {
			if !p.Delivered(id) {
				all = false
				break
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("timeout: deliveries=%v", delivered)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		if delivered[NodeID(i)] != 1 {
			t.Errorf("peer %d delivered %d times, want 1", i, delivered[NodeID(i)])
		}
	}
}

// TestPeerRankedWithoutHubs exercises the hubless Ranked configuration on
// a real network: hubs are discovered by the gossip-based ranking protocol
// instead of being configured.
func TestPeerRankedWithoutHubs(t *testing.T) {
	const n = 4
	addrs := make(map[NodeID]string, n)
	for i := 0; i < n; i++ {
		addrs[NodeID(i)] = fmt.Sprintf("127.0.0.1:%d", 39800+i)
	}
	peers := make([]*Peer, 0, n)
	for i := 0; i < n; i++ {
		self := NodeID(i)
		others := make(map[NodeID]string)
		for id, a := range addrs {
			if id != self {
				others[id] = a
			}
		}
		p, err := NewPeer(PeerConfig{
			Self:       self,
			ListenAddr: addrs[self],
			Peers:      others,
			Strategy:   Ranked, // no Hubs: gossip ranking kicks in
			Fanout:     3,
		})
		if err != nil {
			t.Fatalf("peer %d: %v", i, err)
		}
		peers = append(peers, p)
	}
	defer func() {
		for _, p := range peers {
			p.Close()
		}
	}()

	id := peers[1].Multicast([]byte("ranked without hubs"))
	deadline := time.Now().Add(10 * time.Second)
	for {
		all := true
		for _, p := range peers {
			if !p.Delivered(id) {
				all = false
			}
		}
		if all {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for hubless ranked delivery")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(peers[0].View()) == 0 {
		t.Fatal("peer view empty")
	}
	// BelievesHub must answer without panicking in both modes; with
	// gossip ranking actual membership depends on measurements.
	peers[0].BelievesHub(1)
}

func TestPeerBelievesHubExplicit(t *testing.T) {
	p, err := NewPeer(PeerConfig{
		Self:       9,
		ListenAddr: "127.0.0.1:0",
		Peers:      map[NodeID]string{},
		Strategy:   Ranked,
		Hubs:       []NodeID{2, 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if !p.BelievesHub(2) || !p.BelievesHub(9) || p.BelievesHub(5) {
		t.Fatal("explicit hub set not honoured")
	}
}
